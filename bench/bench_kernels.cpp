// Micro-benchmarks (google-benchmark) of the core kernels: scenario
// classification, parity union-find, A*-search, color-flipping DP, the
// bit-packed raster primitives, and mask synthesis. These back the
// complexity claims of §III-E and the kernel-performance trajectory in
// EXPERIMENTS.md.
//
// `--json <path>` (or `--json=<path>`) additionally writes the per-kernel
// ns/op results as machine-readable JSON (the BENCH_kernels.json schema),
// so perf regressions are diffable across PRs; see tools/bench_smoke.sh.
// `--filter <regex>` (or `--filter=<regex>`) is shorthand for google-
// benchmark's --benchmark_filter= and restricts which kernels run.
// `--trace <path>` / `--metrics <path>` enable the run-trace subsystem for
// the benchmark process and dump its Chrome trace / metrics report — note
// that enabling either perturbs the timed kernels themselves.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <deque>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "patterning/backend.hpp"
#include "patterning/flipping.hpp"
#include "netlist/benchmark.hpp"
#include "ocg/overlay_model.hpp"
#include "route/astar.hpp"
#include "route/router.hpp"
#include "run/run_context.hpp"
#include "sadp/bitmap.hpp"
#include "sadp/decompose.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/arena.hpp"
#include "util/parallel_for.hpp"

namespace sadp {
namespace {

void BM_ClassifyPair(benchmark::State& state) {
  std::mt19937 rng(1);
  std::uniform_int_distribution<Track> d(0, 12);
  std::vector<std::pair<Fragment, Fragment>> pairs;
  for (int i = 0; i < 512; ++i) {
    Fragment a{d(rng), d(rng), Track(d(rng) + 13), Track(d(rng) + 13), 1};
    Fragment b{d(rng), d(rng), Track(d(rng) + 13), Track(d(rng) + 13), 2};
    pairs.emplace_back(a, b);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 511];
    benchmark::DoNotOptimize(classify(a, b));
  }
}
BENCHMARK(BM_ClassifyPair);

void BM_ParityDsuUnite(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  std::mt19937 rng(2);
  std::uniform_int_distribution<std::size_t> d(0, n - 1);
  // Operand pairs are pre-drawn (same sequence the distribution used to
  // produce inline) so the loop times the DSU, not the Mersenne twister.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ops(n);
  for (auto& p : ops) {
    p.first = std::uint32_t(d(rng));
    p.second = std::uint32_t(d(rng));
  }
  for (auto _ : state) {
    state.PauseTiming();
    ParityDsu dsu;
    dsu.ensure(n - 1);
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          dsu.unite(ops[i].first, ops[i].second, std::uint8_t(i & 1)));
    }
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_ParityDsuUnite)->Arg(1024)->Arg(16384);

void astarRouteBench(benchmark::State& state, OpenList mode) {
  const Track size = Track(state.range(0));
  RoutingGrid grid(size, size, 3, DesignRules{});
  AStarEngine engine(grid);
  AStarParams params;
  params.openList = mode;
  // Fixed pool of endpoint pairs cycled per iteration: the per-op mean
  // must not depend on how many iterations the harness settles on, or
  // run-to-run numbers drift with the sampled route mix instead of the
  // code under test.
  std::mt19937 rng(3);
  std::uniform_int_distribution<Track> d(0, size - 1);
  constexpr std::size_t kPool = 64;
  std::vector<std::pair<GridNode, GridNode>> pool(kPool);
  for (auto& [s, t] : pool) {
    s = GridNode{d(rng), d(rng), 0};
    t = GridNode{d(rng), d(rng), 0};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pool[i];
    i = (i + 1) % kPool;
    benchmark::DoNotOptimize(engine.route(1, {&s, 1}, {&t, 1}, params));
  }
}

void BM_AStarRoute(benchmark::State& state) {
  astarRouteBench(state, OpenList::Auto);
}
BENCHMARK(BM_AStarRoute)->Arg(64)->Arg(256);

void BM_AStarRouteBucket(benchmark::State& state) {
  astarRouteBench(state, OpenList::Bucket);
}
BENCHMARK(BM_AStarRouteBucket)->Arg(64)->Arg(256);

void BM_AStarRouteHeap(benchmark::State& state) {
  astarRouteBench(state, OpenList::Heap);
}
BENCHMARK(BM_AStarRouteHeap)->Arg(64)->Arg(256);

/// Bump-allocation throughput with per-iteration scope rewind: the warm
/// steady state every route()/colorFlip() call runs in.
void BM_ArenaAlloc(benchmark::State& state) {
  Arena arena;
  for (auto _ : state) {
    ArenaScope scope(arena);
    for (int i = 0; i < 1024; ++i) {
      benchmark::DoNotOptimize(arena.allocate(64, 8));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ArenaAlloc);

void BM_ColorFlipChain(benchmark::State& state) {
  const int n = int(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    OverlayConstraintGraph g;
    for (int v = 1; v < n; ++v) {
      Classification c;
      c.type = ScenarioType::T3a;
      c.overlay = {1, 0, 0, 1};
      g.addScenario(v - 1, v, c);
    }
    for (int v = 0; v < n; ++v) g.setColor(v, Color::Core);
    state.ResumeTiming();
    benchmark::DoNotOptimize(colorFlip(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColorFlipChain)->Arg(256)->Arg(4096);

/// Triple-patterning recolor (DESIGN.md §5.13) on a path-squared chain of
/// hard must-differ pairs: one connected class-graph component well past
/// the exhaustive cutoff, so this times the greedy + local-search path —
/// the k=3 analogue of BM_ColorFlipChain. Colors start all-first-mask, the
/// worst case the recolorer must untangle every iteration.
void BM_Flip3Color(benchmark::State& state) {
  const int n = int(state.range(0));
  const PatterningBackend& tpl = tpl3Backend();
  Classification c;
  c.type = ScenarioType::T1a;
  for (auto _ : state) {
    state.PauseTiming();
    OverlayConstraintGraph g(std::pmr::get_default_resource(), &tpl.spec());
    for (int v = 1; v < n; ++v) {
      g.addScenario(v - 1, v, c);
      if (v >= 2) g.addScenario(v - 2, v, c);
    }
    for (int v = 0; v < n; ++v) g.setColor(v, Color::Core);
    state.ResumeTiming();
    benchmark::DoNotOptimize(tpl.recolor(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Flip3Color)->Arg(256)->Arg(4096);

// ---- Bit-packed raster primitives -----------------------------------------

/// Pseudo-random layout-like raster: horizontal wire runs plus stub noise.
Bitmap wireRaster(int w, int h, std::uint32_t seed) {
  Bitmap b(w, h);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dx(0, w - 1), dy(0, h - 1),
      len(4, w / 2);
  for (int i = 0; i < (w * h) / 256; ++i) {
    const int x = dx(rng), y = dy(rng);
    b.fillRect(x, y, std::min(w, x + len(rng)), std::min(h, y + 2));
  }
  return b;
}

void BM_BitmapDilate(benchmark::State& state) {
  const int n = int(state.range(0));
  const Bitmap b = wireRaster(n, n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.dilated(2));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BitmapDilate)->Arg(256)->Arg(1024);

/// Same dilate with the AVX2 kernel table pinned (resolves to scalar on
/// CPUs without AVX2, so the entry is always present and comparable).
void BM_BitmapDilateAVX2(benchmark::State& state) {
  const int n = int(state.range(0));
  const Bitmap b = wireRaster(n, n, 7);
  setBitmapSimdLevel(SimdLevel::Avx2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.dilated(2));
  }
  setBitmapSimdLevel(SimdLevel::Auto);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BitmapDilateAVX2)->Arg(256)->Arg(1024);

void BM_BitmapOpenAnchored(benchmark::State& state) {
  const int n = int(state.range(0));
  const Bitmap b = wireRaster(n, n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.openedAnchored(2));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BitmapOpenAnchored)->Arg(256)->Arg(1024);

void BM_ComponentBoxes(benchmark::State& state) {
  const int n = int(state.range(0));
  const Bitmap b = wireRaster(n, n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(componentBoxes(b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ComponentBoxes)->Arg(256)->Arg(1024);

void BM_RasterToNmRects(benchmark::State& state) {
  const int n = int(state.range(0));
  const Bitmap b = wireRaster(n, n, 10);
  const Rect window{0, 0, n * 10, n * 10};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rasterToNmRects(b, window));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RasterToNmRects)->Arg(256)->Arg(1024);

// ---- Mask synthesis -------------------------------------------------------

void BM_DecomposeLayer(benchmark::State& state) {
  const Track rowsN = Track(state.range(0));
  std::vector<ColoredFragment> frags;
  for (Track y = 0; y < rowsN; ++y) {
    frags.push_back({Fragment{0, Track(y * 2), 32, Track(y * 2 + 1),
                              NetId(y)},
                     (y % 2) ? Color::Second : Color::Core});
  }
  const DesignRules rules;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomposeLayer(frags, rules));
  }
  state.SetItemsProcessed(state.iterations() * rowsN);
}
BENCHMARK(BM_DecomposeLayer)->Arg(16)->Arg(64);

/// Tiled-vs-untiled decomposition of a wide window (~17 words of raster
/// columns), the regime the column-band tiling targets. tile_words < 0 is
/// the whole-window reference path; threads > 1 shows the nested fan-out
/// speedup on multicore hosts (byte-identical output either way).
void BM_DecomposeLayerTiled(benchmark::State& state) {
  constexpr Track kRows = 48;
  std::vector<ColoredFragment> frags;
  for (Track y = 0; y < kRows; ++y) {
    frags.push_back({Fragment{0, Track(y * 2), 256, Track(y * 2 + 1),
                              NetId(y)},
                     (y % 2) ? Color::Second : Color::Core});
  }
  const DesignRules rules;
  DecomposeOptions opts;
  opts.tileWords = int(state.range(0));
  setParallelThreads(int(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomposeLayer(frags, rules, opts));
  }
  setParallelThreads(0);
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_DecomposeLayerTiled)
    ->Args({-1, 1})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({4, 4})
    ->ArgNames({"tile_words", "threads"});

/// Static vs dynamic band scheduling on a density-skewed layer: a dense
/// block of short wires packed into the low-x words plus sparse long
/// wires stretching the window to ~17 words, so per-band work varies by
/// an order of magnitude and LPT + stealing can actually rebalance.
/// schedule 0 = Static, 1 = Dynamic; both produce identical masks.
void BM_DecomposeLayerSkewSched(benchmark::State& state) {
  std::vector<ColoredFragment> frags;
  NetId net = 1;
  for (Track y = 0; y < 48; ++y) {
    const Track x0 = Track((y * 3) % 9);
    frags.push_back({Fragment{x0, Track(y * 2), Track(x0 + 14),
                              Track(y * 2 + 1), net},
                     (y % 2) ? Color::Second : Color::Core});
    ++net;
  }
  for (int k = 0; k < 4; ++k) {
    frags.push_back({Fragment{Track(40 + 50 * k), Track(8 * k + 1),
                              Track(256), Track(8 * k + 2), net},
                     (k % 2) ? Color::Second : Color::Core});
    ++net;
  }
  const DesignRules rules;
  DecomposeOptions opts;
  opts.tileWords = 2;
  opts.schedule =
      state.range(0) ? BandSchedule::Dynamic : BandSchedule::Static;
  setParallelThreads(int(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomposeLayer(frags, rules, opts));
  }
  setParallelThreads(0);
  state.SetItemsProcessed(state.iterations() * std::int64_t(frags.size()));
}
BENCHMARK(BM_DecomposeLayerSkewSched)
    ->Args({0, 1})
    ->Args({0, 4})
    ->Args({1, 1})
    ->Args({1, 4})
    ->ArgNames({"dynamic", "threads"});

// ---- Wave-parallel routing (speculative prefetch, DESIGN.md §5.12) ---------

/// Full routing run at a given routeJobs. jobs=1 is the untouched serial
/// loop; jobs>1 adds wave planning plus speculative attempt-0 searches
/// ahead of the commit frontier (output byte-identical by construction,
/// held by tests/test_route_parallel_fuzz.cpp). The instance is rebuilt
/// outside the timed region each iteration -- run() consumes the grid.
void BM_RouteWaves(benchmark::State& state) {
  const int jobs = int(state.range(0));
  const BenchmarkSpec spec = paperBenchmark("Test2").scaled(0.15);
  setParallelThreads(jobs);
  for (auto _ : state) {
    state.PauseTiming();
    BenchmarkInstance inst = makeBenchmark(spec);
    RunContext ctx;
    ctx.setThreadCount(jobs);
    RouterOptions ro;
    ro.routeJobs = jobs;
    state.ResumeTiming();
    OverlayAwareRouter router(inst.grid, inst.netlist, ro, &ctx);
    benchmark::DoNotOptimize(router.run());
  }
  setParallelThreads(0);
}
BENCHMARK(BM_RouteWaves)->Arg(1)->Arg(4)->ArgName("jobs")
    ->Unit(benchmark::kMillisecond);

// ---- Negotiated-congestion routing (PathFinder pre-phase, §5.14) -----------

/// Timing-driven run with the PathFinder negotiation pre-phase enabled:
/// STA over the estimated net graph, criticality-ordered serial pre-route
/// with present/history congestion costs iterated to zero overflow, then
/// the regular overlay-aware pass on the frozen history base field.
void BM_NegotiatedRoute(benchmark::State& state) {
  const BenchmarkSpec spec = paperBenchmark("Test2").scaled(0.15);
  for (auto _ : state) {
    state.PauseTiming();
    BenchmarkInstance inst = makeBenchmark(spec);
    RunContext ctx;
    RouterOptions ro;
    ro.negotiate = true;
    ro.timingDriven = true;
    state.ResumeTiming();
    OverlayAwareRouter router(inst.grid, inst.netlist, ro, &ctx);
    benchmark::DoNotOptimize(router.run());
  }
}
BENCHMARK(BM_NegotiatedRoute)->Unit(benchmark::kMillisecond);

// ---- Full-chip physical report (per-layer parallel) ------------------------

/// One routed multi-layer instance shared by the report benchmarks.
const OverlayAwareRouter& routedInstance() {
  static BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test2").scaled(0.3));
  static OverlayAwareRouter* router = [] {
    auto* r = new OverlayAwareRouter(inst.grid, inst.netlist);
    r->run();
    return r;
  }();
  return *router;
}

void BM_PhysicalReport(benchmark::State& state) {
  const OverlayAwareRouter& router = routedInstance();
  setParallelThreads(int(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.physicalReport());
  }
  setParallelThreads(0);
}
BENCHMARK(BM_PhysicalReport)->Arg(1)->Arg(4)->ArgName("threads");

// ---- JSON result collection ------------------------------------------------

/// Console reporter that additionally collects per-benchmark adjusted
/// real/cpu ns and writes the BENCH_kernels.json schema consumed by
/// future-PR comparisons. (Collecting via the display reporter avoids
/// google-benchmark's requirement that file reporters pair with
/// --benchmark_out.)
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report) {
      if (r.error_occurred) continue;
      results_.push_back({r.benchmark_name(), r.GetAdjustedRealTime(),
                          r.GetAdjustedCPUTime()});
    }
    benchmark::ConsoleReporter::ReportRuns(report);
  }

  bool write(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << "{\n  \"bench\": \"bench_kernels\",\n  \"schema\": 1,\n"
      << "  \"unit\": \"ns\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const Result& r = results_[i];
      f << "    {\"name\": \"" << r.name << "\", \"real_ns\": " << r.realNs
        << ", \"cpu_ns\": " << r.cpuNs << "}"
        << (i + 1 < results_.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    return bool(f);
  }

 private:
  struct Result {
    std::string name;
    double realNs = 0;
    double cpuNs = 0;
  };
  std::vector<Result> results_;
};

}  // namespace
}  // namespace sadp

int main(int argc, char** argv) {
  // Strip our flags before google-benchmark parses the rest.
  std::string jsonPath, tracePath, metricsPath;
  std::deque<std::string> rewritten;  // stable storage for rewritten flags
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (a.rfind("--json=", 0) == 0) {
      jsonPath = a.substr(7);
    } else if (a == "--filter" && i + 1 < argc) {
      rewritten.push_back(std::string("--benchmark_filter=") + argv[++i]);
      args.push_back(rewritten.back().data());
    } else if (a.rfind("--filter=", 0) == 0) {
      rewritten.push_back("--benchmark_filter=" + a.substr(9));
      args.push_back(rewritten.back().data());
    } else if (a == "--trace" && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (a.rfind("--trace=", 0) == 0) {
      tracePath = a.substr(8);
    } else if (a == "--metrics" && i + 1 < argc) {
      metricsPath = argv[++i];
    } else if (a.rfind("--metrics=", 0) == 0) {
      metricsPath = a.substr(10);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!tracePath.empty()) {
    sadp::setTraceLevel(sadp::TraceLevel::Full);
  } else if (!metricsPath.empty()) {
    sadp::setTraceLevel(sadp::TraceLevel::Aggregate);
  }
  int filteredArgc = int(args.size());
  benchmark::Initialize(&filteredArgc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filteredArgc, args.data())) {
    return 1;
  }
  if (jsonPath.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    sadp::JsonCollector collector;
    benchmark::RunSpecifiedBenchmarks(&collector);
    if (!collector.write(jsonPath)) {
      std::fprintf(stderr, "bench_kernels: cannot write %s\n",
                   jsonPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "bench_kernels: wrote %s\n", jsonPath.c_str());
  }
  if (!metricsPath.empty()) {
    std::ofstream mf(metricsPath);
    sadp::writeMetricsJson(mf);
    std::fprintf(stderr, "bench_kernels: wrote %s\n", metricsPath.c_str());
  }
  if (!tracePath.empty()) {
    std::ofstream tf(tracePath);
    sadp::writeChromeTrace(tf);
    std::fprintf(stderr, "bench_kernels: wrote %s\n", tracePath.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
