// Ablation study (our addition; DESIGN.md E7): contribution of each design
// choice of the proposed router, measured on one mid-size instance:
//   - color flipping (per-net + final, §III-C)
//   - the gamma*T2b avoidance term of eq. (5)
//   - the windowed cut-conflict check + rip-up (§III-D)
//   - the post-pass violation repair
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

using namespace sadp;

namespace {

struct Variant {
  const char* name;
  RouterOptions opts;
};

void runVariant(const Variant& v, const BenchmarkSpec& spec) {
  BenchmarkInstance inst = makeBenchmark(spec);
  const auto t0 = std::chrono::steady_clock::now();
  OverlayAwareRouter router(inst.grid, inst.netlist, v.opts);
  const RoutingStats s = router.run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const OverlayReport r = router.physicalReport();
  std::printf("%-22s rout=%6.2f%%  ovlUnits=%8lld  side=%8lldnm  hard=%4d  "
              "#C=%4d  cpu=%6.2fs\n",
              v.name, s.routability(),
              (long long)router.model().totalOverlayUnits(),
              (long long)r.sideOverlayNm, r.hardOverlays, r.cutConflicts(),
              secs);
}

}  // namespace

int main() {
  const BenchmarkSpec spec = bench::scaled(paperBenchmark("Test2"), 1);
  std::printf("Ablation on %s (%d nets)\n", spec.name.c_str(),
              spec.netCount);

  std::vector<Variant> variants;
  variants.push_back({"full (proposed)", RouterOptions{}});
  {
    RouterOptions o;
    o.enableColorFlip = false;
    variants.push_back({"- color flipping", o});
  }
  {
    RouterOptions o;
    o.finalGlobalFlip = false;
    variants.push_back({"- final global flip", o});
  }
  {
    RouterOptions o;
    o.enableT2bAvoidance = false;
    o.astar.gamma = 0.0;
    variants.push_back({"- T2b avoidance", o});
  }
  {
    RouterOptions o;
    o.enableCutCheck = false;
    variants.push_back({"- cut check", o});
  }
  {
    RouterOptions o;
    o.enableRepair = false;
    variants.push_back({"- repair pass", o});
  }
  {
    RouterOptions o;
    o.enableColorFlip = false;
    o.enableT2bAvoidance = false;
    o.astar.gamma = 0.0;
    o.enableCutCheck = false;
    o.enableRepair = false;
    variants.push_back({"bare A* + greedy", o});
  }
  for (const Variant& v : variants) runVariant(v, spec);
  return 0;
}
