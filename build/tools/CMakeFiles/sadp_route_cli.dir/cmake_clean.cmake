file(REMOVE_RECURSE
  "CMakeFiles/sadp_route_cli.dir/sadp_route_cli.cpp.o"
  "CMakeFiles/sadp_route_cli.dir/sadp_route_cli.cpp.o.d"
  "sadp_route_cli"
  "sadp_route_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadp_route_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
