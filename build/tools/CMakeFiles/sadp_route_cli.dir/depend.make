# Empty dependencies file for sadp_route_cli.
# This may be replaced when dependencies are built.
