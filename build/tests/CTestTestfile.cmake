# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_decompose[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_flipping[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_bitmap[1]_include.cmake")
include("/root/repo/build/tests/test_astar[1]_include.cmake")
include("/root/repo/build/tests/test_overlay_model[1]_include.cmake")
include("/root/repo/build/tests/test_router[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_svg[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_appendix[1]_include.cmake")
include("/root/repo/build/tests/test_multipin[1]_include.cmake")
include("/root/repo/build/tests/test_mask_io[1]_include.cmake")
include("/root/repo/build/tests/test_repair[1]_include.cmake")
include("/root/repo/build/tests/test_decompose_options[1]_include.cmake")
include("/root/repo/build/tests/test_trim[1]_include.cmake")
include("/root/repo/build/tests/test_coloring_modes[1]_include.cmake")
include("/root/repo/build/tests/test_astar_targets[1]_include.cmake")
