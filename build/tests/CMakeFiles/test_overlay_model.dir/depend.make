# Empty dependencies file for test_overlay_model.
# This may be replaced when dependencies are built.
