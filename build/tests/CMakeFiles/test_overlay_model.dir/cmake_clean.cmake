file(REMOVE_RECURSE
  "CMakeFiles/test_overlay_model.dir/test_overlay_model.cpp.o"
  "CMakeFiles/test_overlay_model.dir/test_overlay_model.cpp.o.d"
  "test_overlay_model"
  "test_overlay_model.pdb"
  "test_overlay_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
