# Empty compiler generated dependencies file for test_coloring_modes.
# This may be replaced when dependencies are built.
