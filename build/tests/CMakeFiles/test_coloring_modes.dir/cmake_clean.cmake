file(REMOVE_RECURSE
  "CMakeFiles/test_coloring_modes.dir/test_coloring_modes.cpp.o"
  "CMakeFiles/test_coloring_modes.dir/test_coloring_modes.cpp.o.d"
  "test_coloring_modes"
  "test_coloring_modes.pdb"
  "test_coloring_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coloring_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
