# Empty dependencies file for test_multipin.
# This may be replaced when dependencies are built.
