file(REMOVE_RECURSE
  "CMakeFiles/test_multipin.dir/test_multipin.cpp.o"
  "CMakeFiles/test_multipin.dir/test_multipin.cpp.o.d"
  "test_multipin"
  "test_multipin.pdb"
  "test_multipin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multipin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
