file(REMOVE_RECURSE
  "CMakeFiles/test_mask_io.dir/test_mask_io.cpp.o"
  "CMakeFiles/test_mask_io.dir/test_mask_io.cpp.o.d"
  "test_mask_io"
  "test_mask_io.pdb"
  "test_mask_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mask_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
