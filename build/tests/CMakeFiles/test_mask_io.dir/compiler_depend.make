# Empty compiler generated dependencies file for test_mask_io.
# This may be replaced when dependencies are built.
