file(REMOVE_RECURSE
  "CMakeFiles/test_astar_targets.dir/test_astar_targets.cpp.o"
  "CMakeFiles/test_astar_targets.dir/test_astar_targets.cpp.o.d"
  "test_astar_targets"
  "test_astar_targets.pdb"
  "test_astar_targets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_astar_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
