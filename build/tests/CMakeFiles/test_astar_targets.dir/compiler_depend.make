# Empty compiler generated dependencies file for test_astar_targets.
# This may be replaced when dependencies are built.
