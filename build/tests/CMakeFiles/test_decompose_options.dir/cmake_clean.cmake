file(REMOVE_RECURSE
  "CMakeFiles/test_decompose_options.dir/test_decompose_options.cpp.o"
  "CMakeFiles/test_decompose_options.dir/test_decompose_options.cpp.o.d"
  "test_decompose_options"
  "test_decompose_options.pdb"
  "test_decompose_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decompose_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
