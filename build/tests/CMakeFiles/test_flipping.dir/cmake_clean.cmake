file(REMOVE_RECURSE
  "CMakeFiles/test_flipping.dir/test_flipping.cpp.o"
  "CMakeFiles/test_flipping.dir/test_flipping.cpp.o.d"
  "test_flipping"
  "test_flipping.pdb"
  "test_flipping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
