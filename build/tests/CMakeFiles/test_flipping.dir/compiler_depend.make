# Empty compiler generated dependencies file for test_flipping.
# This may be replaced when dependencies are built.
