file(REMOVE_RECURSE
  "CMakeFiles/test_appendix.dir/test_appendix.cpp.o"
  "CMakeFiles/test_appendix.dir/test_appendix.cpp.o.d"
  "test_appendix"
  "test_appendix.pdb"
  "test_appendix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
