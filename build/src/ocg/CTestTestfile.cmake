# CMake generated Testfile for 
# Source directory: /root/repo/src/ocg
# Build directory: /root/repo/build/src/ocg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
