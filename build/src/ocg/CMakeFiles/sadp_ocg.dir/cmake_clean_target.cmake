file(REMOVE_RECURSE
  "libsadp_ocg.a"
)
