
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocg/graph.cpp" "src/ocg/CMakeFiles/sadp_ocg.dir/graph.cpp.o" "gcc" "src/ocg/CMakeFiles/sadp_ocg.dir/graph.cpp.o.d"
  "/root/repo/src/ocg/overlay_model.cpp" "src/ocg/CMakeFiles/sadp_ocg.dir/overlay_model.cpp.o" "gcc" "src/ocg/CMakeFiles/sadp_ocg.dir/overlay_model.cpp.o.d"
  "/root/repo/src/ocg/scenario.cpp" "src/ocg/CMakeFiles/sadp_ocg.dir/scenario.cpp.o" "gcc" "src/ocg/CMakeFiles/sadp_ocg.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/sadp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sadp_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
