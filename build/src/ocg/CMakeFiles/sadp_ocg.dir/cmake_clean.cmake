file(REMOVE_RECURSE
  "CMakeFiles/sadp_ocg.dir/graph.cpp.o"
  "CMakeFiles/sadp_ocg.dir/graph.cpp.o.d"
  "CMakeFiles/sadp_ocg.dir/overlay_model.cpp.o"
  "CMakeFiles/sadp_ocg.dir/overlay_model.cpp.o.d"
  "CMakeFiles/sadp_ocg.dir/scenario.cpp.o"
  "CMakeFiles/sadp_ocg.dir/scenario.cpp.o.d"
  "libsadp_ocg.a"
  "libsadp_ocg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadp_ocg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
