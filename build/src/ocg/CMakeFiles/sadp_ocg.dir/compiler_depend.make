# Empty compiler generated dependencies file for sadp_ocg.
# This may be replaced when dependencies are built.
