file(REMOVE_RECURSE
  "libsadp_geom.a"
)
