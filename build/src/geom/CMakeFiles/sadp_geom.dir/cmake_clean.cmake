file(REMOVE_RECURSE
  "CMakeFiles/sadp_geom.dir/geom.cpp.o"
  "CMakeFiles/sadp_geom.dir/geom.cpp.o.d"
  "libsadp_geom.a"
  "libsadp_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadp_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
