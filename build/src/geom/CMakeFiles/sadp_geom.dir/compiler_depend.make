# Empty compiler generated dependencies file for sadp_geom.
# This may be replaced when dependencies are built.
