file(REMOVE_RECURSE
  "CMakeFiles/sadp_sadp.dir/bitmap.cpp.o"
  "CMakeFiles/sadp_sadp.dir/bitmap.cpp.o.d"
  "CMakeFiles/sadp_sadp.dir/decompose.cpp.o"
  "CMakeFiles/sadp_sadp.dir/decompose.cpp.o.d"
  "CMakeFiles/sadp_sadp.dir/mask_io.cpp.o"
  "CMakeFiles/sadp_sadp.dir/mask_io.cpp.o.d"
  "CMakeFiles/sadp_sadp.dir/svg.cpp.o"
  "CMakeFiles/sadp_sadp.dir/svg.cpp.o.d"
  "CMakeFiles/sadp_sadp.dir/trim.cpp.o"
  "CMakeFiles/sadp_sadp.dir/trim.cpp.o.d"
  "libsadp_sadp.a"
  "libsadp_sadp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadp_sadp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
