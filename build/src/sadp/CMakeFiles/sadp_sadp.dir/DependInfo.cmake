
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sadp/bitmap.cpp" "src/sadp/CMakeFiles/sadp_sadp.dir/bitmap.cpp.o" "gcc" "src/sadp/CMakeFiles/sadp_sadp.dir/bitmap.cpp.o.d"
  "/root/repo/src/sadp/decompose.cpp" "src/sadp/CMakeFiles/sadp_sadp.dir/decompose.cpp.o" "gcc" "src/sadp/CMakeFiles/sadp_sadp.dir/decompose.cpp.o.d"
  "/root/repo/src/sadp/mask_io.cpp" "src/sadp/CMakeFiles/sadp_sadp.dir/mask_io.cpp.o" "gcc" "src/sadp/CMakeFiles/sadp_sadp.dir/mask_io.cpp.o.d"
  "/root/repo/src/sadp/svg.cpp" "src/sadp/CMakeFiles/sadp_sadp.dir/svg.cpp.o" "gcc" "src/sadp/CMakeFiles/sadp_sadp.dir/svg.cpp.o.d"
  "/root/repo/src/sadp/trim.cpp" "src/sadp/CMakeFiles/sadp_sadp.dir/trim.cpp.o" "gcc" "src/sadp/CMakeFiles/sadp_sadp.dir/trim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ocg/CMakeFiles/sadp_ocg.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/sadp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sadp_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
