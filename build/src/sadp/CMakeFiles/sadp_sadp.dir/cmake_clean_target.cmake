file(REMOVE_RECURSE
  "libsadp_sadp.a"
)
