
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baselines.cpp" "src/baselines/CMakeFiles/sadp_baselines.dir/baselines.cpp.o" "gcc" "src/baselines/CMakeFiles/sadp_baselines.dir/baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/route/CMakeFiles/sadp_route.dir/DependInfo.cmake"
  "/root/repo/build/src/color/CMakeFiles/sadp_color.dir/DependInfo.cmake"
  "/root/repo/build/src/sadp/CMakeFiles/sadp_sadp.dir/DependInfo.cmake"
  "/root/repo/build/src/ocg/CMakeFiles/sadp_ocg.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sadp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/sadp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sadp_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
