# Empty dependencies file for sadp_baselines.
# This may be replaced when dependencies are built.
