file(REMOVE_RECURSE
  "libsadp_baselines.a"
)
