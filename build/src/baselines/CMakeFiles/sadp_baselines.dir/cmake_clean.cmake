file(REMOVE_RECURSE
  "CMakeFiles/sadp_baselines.dir/baselines.cpp.o"
  "CMakeFiles/sadp_baselines.dir/baselines.cpp.o.d"
  "libsadp_baselines.a"
  "libsadp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
