# Empty compiler generated dependencies file for sadp_eval.
# This may be replaced when dependencies are built.
