file(REMOVE_RECURSE
  "CMakeFiles/sadp_eval.dir/eval.cpp.o"
  "CMakeFiles/sadp_eval.dir/eval.cpp.o.d"
  "libsadp_eval.a"
  "libsadp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
