file(REMOVE_RECURSE
  "libsadp_eval.a"
)
