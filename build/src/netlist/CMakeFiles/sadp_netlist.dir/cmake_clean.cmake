file(REMOVE_RECURSE
  "CMakeFiles/sadp_netlist.dir/benchmark.cpp.o"
  "CMakeFiles/sadp_netlist.dir/benchmark.cpp.o.d"
  "CMakeFiles/sadp_netlist.dir/netlist.cpp.o"
  "CMakeFiles/sadp_netlist.dir/netlist.cpp.o.d"
  "libsadp_netlist.a"
  "libsadp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
