file(REMOVE_RECURSE
  "CMakeFiles/sadp_grid.dir/routing_grid.cpp.o"
  "CMakeFiles/sadp_grid.dir/routing_grid.cpp.o.d"
  "libsadp_grid.a"
  "libsadp_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadp_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
