file(REMOVE_RECURSE
  "libsadp_grid.a"
)
