file(REMOVE_RECURSE
  "libsadp_color.a"
)
