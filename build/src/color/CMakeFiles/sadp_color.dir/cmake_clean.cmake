file(REMOVE_RECURSE
  "CMakeFiles/sadp_color.dir/flipping.cpp.o"
  "CMakeFiles/sadp_color.dir/flipping.cpp.o.d"
  "libsadp_color.a"
  "libsadp_color.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadp_color.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
