# Empty dependencies file for sadp_color.
# This may be replaced when dependencies are built.
