file(REMOVE_RECURSE
  "CMakeFiles/sadp_route.dir/astar.cpp.o"
  "CMakeFiles/sadp_route.dir/astar.cpp.o.d"
  "CMakeFiles/sadp_route.dir/router.cpp.o"
  "CMakeFiles/sadp_route.dir/router.cpp.o.d"
  "libsadp_route.a"
  "libsadp_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadp_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
