file(REMOVE_RECURSE
  "libsadp_route.a"
)
