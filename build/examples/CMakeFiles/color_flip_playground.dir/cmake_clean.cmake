file(REMOVE_RECURSE
  "CMakeFiles/color_flip_playground.dir/color_flip_playground.cpp.o"
  "CMakeFiles/color_flip_playground.dir/color_flip_playground.cpp.o.d"
  "color_flip_playground"
  "color_flip_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/color_flip_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
