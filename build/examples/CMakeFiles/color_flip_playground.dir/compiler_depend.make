# Empty compiler generated dependencies file for color_flip_playground.
# This may be replaced when dependencies are built.
