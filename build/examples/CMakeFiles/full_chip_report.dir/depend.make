# Empty dependencies file for full_chip_report.
# This may be replaced when dependencies are built.
