file(REMOVE_RECURSE
  "CMakeFiles/full_chip_report.dir/full_chip_report.cpp.o"
  "CMakeFiles/full_chip_report.dir/full_chip_report.cpp.o.d"
  "full_chip_report"
  "full_chip_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_chip_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
