file(REMOVE_RECURSE
  "CMakeFiles/odd_cycle_demo.dir/odd_cycle_demo.cpp.o"
  "CMakeFiles/odd_cycle_demo.dir/odd_cycle_demo.cpp.o.d"
  "odd_cycle_demo"
  "odd_cycle_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odd_cycle_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
