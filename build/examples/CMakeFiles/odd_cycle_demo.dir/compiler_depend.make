# Empty compiler generated dependencies file for odd_cycle_demo.
# This may be replaced when dependencies are built.
